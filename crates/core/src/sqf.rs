//! Shortest-queue-first transition probabilities (paper appendix §I).
//!
//! Only the transition probabilities depend on the load-balancing
//! strategy; everything else in RAMSIS is unchanged (§I). Under
//! shortest-queue-first (join-the-shortest-queue), worker `w`'s arrival
//! process is approximated by a *conditional Poisson* process whose rate
//! depends on the worker's own queue length `n` (Gupta et al. \[18\]):
//!
//! ```text
//! λ_w(n) = (λ / (K·μ))^K · μ     for n ≥ 3
//! λ_w(n) = λ / K                 for 0 ≤ n ≤ 2
//! ```
//!
//! where `μ` is the worker's service *rate* (the paper writes "mean
//! inference latency"; dimensional analysis and the cited JSQ analysis
//! both require the rate `1/latency`, which is what we use — the
//! conservatively chosen latency is that of the slowest Pareto model
//! that can still sustain the per-worker load within half the SLO, per
//! §I's definition of `μ`).
//!
//! Equation 4 then factors the transition probability over the same
//! intervals B, C, D as the round-robin case, but with *worker-level*
//! counts: `k_B^w = 0`, the first arrival in C (`k_C^w ≥ 1` when
//! `n' ≥ 1` — we tighten the appendix's `k_C^w ∈ [0, n']`, which would
//! let the slack-defining arrival land in D), and `k_D^w = n' − k_C^w`.

use ramsis_profiles::WorkerProfile;
use ramsis_stats::counts::{ArrivalProcess, PoissonProcess};

use crate::action::Action;
use crate::discretize::TimeGrid;
use crate::state::{State, StateSpace};
use crate::transitions::TableCache;

/// Computes the JSQ conditional arrival rate pair `(λ_low, λ_high)` for
/// queue lengths `n ≤ 2` and `n ≥ 3` respectively.
///
/// `central_rate` is `λ`, the central-queue rate.
pub fn jsq_rates(
    profile: &WorkerProfile,
    slo: f64,
    central_rate: f64,
    workers: usize,
) -> (f64, f64) {
    let k = workers as f64;
    let per_worker = central_rate / k;
    // μ's latency: the slowest Pareto model that still meets the load
    // within SLO/2 at some batch size (§I). Fall back to the fastest
    // model when none qualifies (overload).
    let mut mu_latency: Option<f64> = None;
    for &m in profile.pareto_models() {
        let l1 = profile.latency(m, 1).expect("batch 1 is always profiled");
        let sustainable = (1..=profile.max_batch()).any(|b| {
            profile
                .latency(m, b)
                .is_some_and(|l| l <= slo / 2.0 && b as f64 / l >= per_worker)
        });
        if sustainable {
            mu_latency = Some(mu_latency.map_or(l1, |cur: f64| cur.max(l1)));
        }
    }
    let mu_latency = mu_latency.unwrap_or_else(|| {
        profile
            .latency(profile.fastest_model(), 1)
            .expect("batch 1 is always profiled")
    });
    let mu_rate = 1.0 / mu_latency;
    let rho = central_rate / (k * mu_rate);
    let high = rho.powf(k) * mu_rate;
    (per_worker, high.min(per_worker))
}

/// Builds transition rows under shortest-queue-first balancing.
pub struct SqfTransitionBuilder<'a> {
    profile: &'a WorkerProfile,
    grid: &'a TimeGrid,
    space: &'a StateSpace,
    /// Arrival process for short queues (`n ≤ 2`).
    low_process: PoissonProcess,
    /// Arrival process for long queues (`n ≥ 3`).
    high_process: PoissonProcess,
    low_cache: TableCache,
    high_cache: TableCache,
    slo: f64,
    prune_eps: f64,
}

impl<'a> SqfTransitionBuilder<'a> {
    /// Creates a builder for a central-queue rate and worker count.
    // The eight parameters are the §I problem inputs, mirroring the
    // round-robin builder.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        profile: &'a WorkerProfile,
        grid: &'a TimeGrid,
        space: &'a StateSpace,
        central_rate: f64,
        workers: usize,
        slo: f64,
        tail_eps: f64,
        prune_eps: f64,
    ) -> Self {
        assert!(workers > 0, "need at least one worker");
        let (low, high) = jsq_rates(profile, slo, central_rate, workers);
        Self {
            profile,
            grid,
            space,
            low_process: PoissonProcess::per_second(low),
            high_process: PoissonProcess::per_second(high),
            low_cache: TableCache::new(tail_eps),
            high_cache: TableCache::new(tail_eps),
            slo,
            prune_eps,
        }
    }

    /// The conditional arrival rate used for queue length `n`.
    pub fn rate_for(&self, n: u32) -> f64 {
        if n <= 2 {
            self.low_process.rate()
        } else {
            self.high_process.rate()
        }
    }

    fn process_and_cache(&self, n: u32) -> (&PoissonProcess, &TableCache) {
        if n <= 2 {
            (&self.low_process, &self.low_cache)
        } else {
            (&self.high_process, &self.high_cache)
        }
    }

    /// The transition row for `(state, action)` under SQF (Eq. 4).
    ///
    /// # Panics
    ///
    /// Panics on contradictory inputs (see
    /// [`crate::transitions::TransitionBuilder::row`]).
    pub fn row(&self, state: State, action: Action) -> Vec<(usize, f64)> {
        match (state, action) {
            (State::Empty, Action::Arrival) => {
                let next = State::Queued {
                    n: 1,
                    slack: self.grid.top() as u32,
                };
                vec![(self.space.index(next), 1.0)]
            }
            (State::Empty, a) => panic!("serve action {a:?} invalid in the empty state"),
            (_, Action::Arrival) => panic!("arrival action invalid in a non-empty state"),
            (_, Action::Shed) => vec![(self.space.index(State::Empty), 1.0)],
            (s, Action::Serve { model, batch }) => {
                let (n, slack) = self
                    .space
                    .effective_queue(s)
                    .expect("non-empty state has a queue");
                assert!(
                    batch >= 1 && batch <= n,
                    "batch {batch} out of range for n={n}"
                );
                self.row_serve(n, slack as usize, model, batch)
            }
        }
    }

    fn row_serve(&self, n: u32, slack: usize, model: u32, batch: u32) -> Vec<(usize, f64)> {
        let (process, cache) = self.process_and_cache(n);
        let l = self.profile.latency_extrapolated(model as usize, batch);
        let table_l = cache.table(process, l);
        let nw = self.space.max_queue();
        let leftover = n - batch;
        let mut row = Vec::new();
        let mut accounted = 0.0;

        if leftover > 0 {
            // Partial batch: deterministic leftover slack, Poisson
            // arrival counts at the worker.
            let j_next = self.grid.floor_index(self.grid.value(slack) - l) as u32;
            for wa in 0..=(nw - leftover) {
                let p = table_l.pmf(wa as u64);
                accounted += p;
                if p > self.prune_eps {
                    row.push((
                        self.space.index(State::Queued {
                            n: leftover + wa,
                            slack: j_next,
                        }),
                        p,
                    ));
                }
            }
        } else {
            // Full batch. n' = 0: no arrivals during service.
            let p_empty = table_l.pmf(0);
            accounted += p_empty;
            if p_empty > self.prune_eps {
                row.push((self.space.index(State::Empty), p_empty));
            }
            // n' ≥ 1 per slack bin, Eq. 4 with k_B^w = 0, k_C^w ≥ 1.
            for j_next in 0..self.grid.top() {
                let raw_lo = l + self.grid.value(j_next) - self.slo;
                let lo_edge = if j_next == 0 { 0.0 } else { raw_lo.max(0.0) };
                let hi_edge = (l + self.grid.upper_edge(j_next) - self.slo).clamp(0.0, l);
                if hi_edge <= lo_edge + 1e-15 {
                    continue;
                }
                let table_b = cache.table(process, lo_edge);
                let table_c = cache.table(process, hi_edge - lo_edge);
                let table_d = cache.table(process, l - hi_edge);
                let pb0 = table_b.pmf(0);
                if pb0 == 0.0 {
                    continue;
                }
                for n_next in 1..=nw {
                    let mut p = 0.0;
                    for kc in 1..=n_next {
                        p += table_c.pmf(kc as u64) * table_d.pmf((n_next - kc) as u64);
                    }
                    p *= pb0;
                    accounted += p;
                    if p > self.prune_eps {
                        row.push((
                            self.space.index(State::Queued {
                                n: n_next,
                                slack: j_next as u32,
                            }),
                            p,
                        ));
                    }
                }
            }
        }

        let p_full = (1.0 - accounted).max(0.0);
        if p_full > self.prune_eps {
            row.push((self.space.index(State::Full), p_full));
        }
        if row.is_empty() {
            row.push((self.space.index(State::Full), 1.0));
        }
        row
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discretize::Discretization;
    use ramsis_profiles::{ModelCatalog, ProfilerConfig};
    use std::time::Duration;

    const SLO: f64 = 0.15;

    fn profile() -> &'static WorkerProfile {
        use std::sync::OnceLock;
        static PROFILE: OnceLock<WorkerProfile> = OnceLock::new();
        PROFILE.get_or_init(|| {
            WorkerProfile::build(
                &ModelCatalog::torchvision_image(),
                Duration::from_millis(150),
                ProfilerConfig::default(),
            )
        })
    }

    fn fixture(qps: f64, workers: usize) -> (TimeGrid, StateSpace, f64, usize) {
        let grid = TimeGrid::build(profile(), SLO, Discretization::fixed_length(20));
        let nw = profile().max_batch() + 3;
        let space = StateSpace::new(nw, grid.len() as u32);
        (grid, space, qps, workers)
    }

    #[test]
    fn jsq_rates_are_sane() {
        let (low, high) = jsq_rates(profile(), SLO, 400.0, 10);
        assert!((low - 40.0).abs() < 1e-9);
        // A long queue under JSQ receives less traffic than round-robin
        // would deliver.
        assert!(high <= low);
        assert!(high >= 0.0);
    }

    #[test]
    fn jsq_high_rate_shrinks_with_more_workers() {
        let (_, high_few) = jsq_rates(profile(), SLO, 400.0, 4);
        let (_, high_many) = jsq_rates(profile(), SLO, 400.0, 40);
        // With more workers, the chance that *this* worker is the
        // shortest while already holding 3+ queries vanishes.
        assert!(high_many <= high_few);
    }

    #[test]
    fn rows_sum_to_one() {
        let (grid, space, qps, workers) = fixture(800.0, 8);
        let b = SqfTransitionBuilder::new(profile(), &grid, &space, qps, workers, SLO, 1e-12, 0.0);
        let fast = profile().fastest_model() as u32;
        for n in [1u32, 2, 3, space.max_queue()] {
            for slack in [0usize, grid.top() / 2, grid.top()] {
                let row = b.row(
                    State::Queued {
                        n,
                        slack: slack as u32,
                    },
                    Action::Serve {
                        model: fast,
                        batch: n,
                    },
                );
                let s: f64 = row.iter().map(|&(_, p)| p).sum();
                assert!((s - 1.0).abs() < 1e-6, "n={n} slack={slack}: sum={s}");
            }
        }
    }

    #[test]
    fn long_queue_uses_reduced_rate() {
        let (grid, space, qps, workers) = fixture(2_000.0, 20);
        let b = SqfTransitionBuilder::new(profile(), &grid, &space, qps, workers, SLO, 1e-12, 0.0);
        assert!(b.rate_for(1) >= b.rate_for(3));
        assert_eq!(b.rate_for(0), b.rate_for(2));
        assert_eq!(b.rate_for(3), b.rate_for(30));
    }

    #[test]
    fn empty_probability_higher_under_sqf_for_long_queues() {
        // A worker with a long queue receives almost nothing under JSQ,
        // so serving it all should empty the queue with high probability
        // compared to round-robin at the same nominal load.
        // 600 QPS over 30 workers (20 QPS each) is sustainable within
        // SLO/2, so the JSQ approximation strongly throttles arrivals to
        // a worker already holding 5 queries.
        let (grid, space, qps, workers) = fixture(600.0, 30);
        let b = SqfTransitionBuilder::new(profile(), &grid, &space, qps, workers, SLO, 1e-12, 0.0);
        let fast = profile().fastest_model() as u32;
        let row = b.row(
            State::Queued {
                n: 5,
                slack: grid.top() as u32,
            },
            Action::Serve {
                model: fast,
                batch: 5,
            },
        );
        let p_empty: f64 = row
            .iter()
            .filter(|&&(t, _)| space.state(t) == State::Empty)
            .map(|&(_, p)| p)
            .sum();
        assert!(p_empty > 0.5, "p_empty={p_empty}");
    }

    #[test]
    fn shed_action_empties_the_queue() {
        let (grid, space, qps, workers) = fixture(500.0, 4);
        let b = SqfTransitionBuilder::new(profile(), &grid, &space, qps, workers, SLO, 1e-12, 0.0);
        let row = b.row(State::Queued { n: 5, slack: 0 }, Action::Shed);
        assert_eq!(row, vec![(space.index(State::Empty), 1.0)]);
    }

    #[test]
    fn arrival_action_matches_round_robin() {
        let (grid, space, qps, workers) = fixture(500.0, 4);
        let b = SqfTransitionBuilder::new(profile(), &grid, &space, qps, workers, SLO, 1e-12, 0.0);
        let row = b.row(State::Empty, Action::Arrival);
        assert_eq!(row.len(), 1);
        assert_eq!(row[0].1, 1.0);
    }
}
