//! Property tests for the §4.4 transition machinery: across randomized
//! loads, worker counts, discretizations, and states, every transition
//! row must be a probability distribution over valid states.

use proptest::prelude::*;
use std::time::Duration;

use ramsis_core::action::{valid_actions, Action, Batching};
use ramsis_core::config::MissPolicy;
use ramsis_core::discretize::{Discretization, TimeGrid};
use ramsis_core::sqf::SqfTransitionBuilder;
use ramsis_core::state::{State, StateSpace};
use ramsis_core::transitions::TransitionBuilder;
use ramsis_profiles::{ModelCatalog, ProfilerConfig, WorkerProfile};
use ramsis_stats::PoissonProcess;

const SLO: f64 = 0.15;

fn profile() -> &'static WorkerProfile {
    use std::sync::OnceLock;
    static P: OnceLock<WorkerProfile> = OnceLock::new();
    P.get_or_init(|| {
        WorkerProfile::build(
            &ModelCatalog::torchvision_image(),
            Duration::from_millis(150),
            ProfilerConfig::default(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Round-robin rows are distributions: non-negative entries over
    /// valid targets, summing to 1 within the truncation tolerance.
    #[test]
    fn round_robin_rows_are_distributions(
        qps in 20.0f64..4_000.0,
        workers in 1usize..80,
        d in 3u32..40,
        n_raw in 1u32..14,
        slack_frac in 0.0f64..1.0,
        batching_variable in proptest::bool::ANY,
    ) {
        let p = profile();
        let grid = TimeGrid::build(p, SLO, Discretization::fixed_length(d));
        let nw = p.max_batch() + 3;
        let space = StateSpace::new(nw, grid.len() as u32);
        let process = PoissonProcess::per_second(qps);
        let builder =
            TransitionBuilder::new(p, &grid, &space, &process, workers, SLO, 1e-12, 0.0);

        let n = n_raw.min(nw);
        let slack = ((grid.len() - 1) as f64 * slack_frac) as usize;
        let state = State::Queued { n, slack: slack as u32 };
        let batching = if batching_variable { Batching::Variable } else { Batching::Maximal };
        for action in valid_actions(p, &grid, n, slack, batching, MissPolicy::ServeLate) {
            let row = builder.row(state, action);
            let mut sum = 0.0;
            for &(target, prob) in &row {
                prop_assert!(prob >= 0.0, "negative probability {prob}");
                prop_assert!(prob <= 1.0 + 1e-9, "probability {prob} > 1");
                prop_assert!(target < space.len(), "target {target} out of range");
                sum += prob;
            }
            prop_assert!(
                (sum - 1.0).abs() < 1e-6,
                "row for {state:?} {action:?} sums to {sum}"
            );
        }
    }

    /// SQF rows are distributions too.
    #[test]
    fn sqf_rows_are_distributions(
        qps in 20.0f64..3_000.0,
        workers in 1usize..60,
        d in 3u32..30,
        n_raw in 1u32..14,
        slack_frac in 0.0f64..1.0,
    ) {
        let p = profile();
        let grid = TimeGrid::build(p, SLO, Discretization::fixed_length(d));
        let nw = p.max_batch() + 3;
        let space = StateSpace::new(nw, grid.len() as u32);
        let builder =
            SqfTransitionBuilder::new(p, &grid, &space, qps, workers, SLO, 1e-12, 0.0);

        let n = n_raw.min(nw);
        let slack = ((grid.len() - 1) as f64 * slack_frac) as usize;
        let state = State::Queued { n, slack: slack as u32 };
        for action in valid_actions(p, &grid, n, slack, Batching::Maximal, MissPolicy::ServeLate) {
            let row = builder.row(state, action);
            let sum: f64 = row.iter().map(|&(_, p)| p).sum();
            prop_assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
            for &(_, prob) in &row {
                prop_assert!(prob >= 0.0);
            }
        }
    }

    /// Transition monotonicity in load: raising the central-queue rate
    /// cannot raise the probability of reaching the empty state from a
    /// serve action (more arrivals can only fill the queue).
    #[test]
    fn higher_load_means_less_emptying(
        qps in 50.0f64..1_500.0,
        workers in 2usize..40,
    ) {
        let p = profile();
        let grid = TimeGrid::build(p, SLO, Discretization::fixed_length(15));
        let nw = p.max_batch() + 3;
        let space = StateSpace::new(nw, grid.len() as u32);
        let state = State::Queued { n: 1, slack: grid.top() as u32 };
        let action = Action::Serve { model: p.fastest_model() as u32, batch: 1 };
        let p_empty = |rate: f64| {
            let process = PoissonProcess::per_second(rate);
            let b = TransitionBuilder::new(p, &grid, &space, &process, workers, SLO, 1e-12, 0.0);
            b.row(state, action)
                .iter()
                .filter(|&&(t, _)| space.state(t) == State::Empty)
                .map(|&(_, pr)| pr)
                .sum::<f64>()
        };
        let low = p_empty(qps);
        let high = p_empty(qps * 2.0);
        prop_assert!(high <= low + 1e-9, "p_empty rose with load: {low} -> {high}");
    }

    /// Valid actions always exist, respect the slack, and include the
    /// forced fallback exactly when nothing else fits.
    #[test]
    fn valid_actions_invariants(
        n_raw in 1u32..14,
        slack_frac in 0.0f64..1.0,
        d in 3u32..40,
    ) {
        let p = profile();
        let grid = TimeGrid::build(p, SLO, Discretization::fixed_length(d));
        let nw = p.max_batch() + 3;
        let n = n_raw.min(nw);
        let slack = ((grid.len() - 1) as f64 * slack_frac) as usize;
        let actions = valid_actions(p, &grid, n, slack, Batching::Variable, MissPolicy::ServeLate);
        prop_assert!(!actions.is_empty());
        let slack_value = grid.value(slack);
        let forced = actions.len() == 1
            && actions[0] == Action::Serve { model: p.fastest_model() as u32, batch: n };
        for a in &actions {
            let Action::Serve { model, batch } = *a else {
                prop_assert!(false, "unexpected action {a:?}");
                continue;
            };
            prop_assert!(batch >= 1 && batch <= n);
            if !forced {
                // Every non-forced action meets the slack.
                let l = p.latency(model as usize, batch).expect("profiled");
                prop_assert!(l <= slack_value + 1e-12);
            }
        }
    }
}
