//! Request-level resilience through the facade: timeouts rescue
//! stragglers, hedges duplicate without double-counting, admission
//! bounds the queues, and the disabled policy is bit-identical to the
//! pre-resilience engine.

use ramsis::prelude::*;
use ramsis::sim::{FastestFixed, FaultPlan, ResiliencePolicy, Routing};
use ramsis::telemetry::{conservation, Event, QueueId, VecSink};

fn profile() -> &'static WorkerProfile {
    use std::sync::OnceLock;
    static P: OnceLock<WorkerProfile> = OnceLock::new();
    P.get_or_init(|| {
        WorkerProfile::build(
            &ModelCatalog::torchvision_image(),
            Duration::from_millis(150),
            ProfilerConfig::default(),
        )
    })
}

fn traced_run(
    config: SimulationConfig,
    routing: Routing,
    plan: &FaultPlan,
    load_qps: f64,
    duration_s: f64,
) -> (SimulationReport, Vec<Event>) {
    let trace = Trace::constant(load_qps, duration_s);
    let sim = Simulation::new(profile(), config).expect("valid simulation config");
    let mut scheme = FastestFixed::new(profile().fastest_model(), routing);
    let mut monitor = LoadMonitor::new();
    let mut sink = VecSink::new();
    let report = sim
        .run_faulted_traced(&trace, plan, &mut scheme, &mut monitor, &mut sink)
        .expect("plan validates");
    (report, sink.into_events())
}

#[test]
fn timeouts_and_retries_rescue_a_straggler() {
    // Worker 0 runs 15x slower for most of the run; round-robin keeps
    // feeding it. With timeouts + retries its victims get re-dispatched
    // instead of waiting out the straggler.
    let mut policy = ResiliencePolicy::default();
    policy.timeout.enabled = true;
    policy.retry.max_retries = 3;
    let plan = FaultPlan::none().slowdown(0, 1.0, 19.0, 15.0);
    let config = SimulationConfig::new(3, 0.15)
        .seeded(9)
        .with_resilience(policy);
    let (report, events) = traced_run(config, Routing::PerWorkerRoundRobin, &plan, 40.0, 20.0);

    let rs = &report.resilience;
    assert!(rs.timeouts > 0, "straggler dispatches must time out");
    assert!(rs.retries > 0, "timed-out queries must be retried");
    assert_eq!(
        report.served + report.dropped,
        report.total_arrivals,
        "every query ends exactly once"
    );
    let c = conservation(&events);
    assert!(c.holds(), "conservation violated: {c:?}");
    // Retries rescue: most timed-out queries still complete.
    assert!(report.served > report.total_arrivals / 2);
}

#[test]
fn hedged_queries_are_counted_exactly_once() {
    let mut policy = ResiliencePolicy::default();
    policy.hedge.enabled = true;
    policy.hedge.min_samples = 16;
    policy.hedge.quantile = 85.0;
    policy.hedge.min_delay_s = 0.001;
    let plan = FaultPlan::none().slowdown(0, 2.0, 18.0, 8.0);
    let config = SimulationConfig::new(4, 0.15)
        .seeded(33)
        .stochastic()
        .with_resilience(policy);
    let (report, events) = traced_run(config, Routing::PerWorkerRoundRobin, &plan, 60.0, 20.0);

    let rs = &report.resilience;
    assert!(rs.hedges_issued > 0, "the straggler must trigger hedges");
    assert!(rs.hedges_cancelled <= rs.hedges_issued);
    assert!(rs.hedge_wins <= rs.hedges_cancelled);
    // First-wins accounting: a hedged query completes once, not twice.
    assert_eq!(report.served + report.dropped, report.total_arrivals);
    let c = conservation(&events);
    assert!(c.holds(), "conservation violated: {c:?}");
    let completes = events
        .iter()
        .filter(|e| matches!(e, Event::Complete { .. }))
        .count() as u64;
    assert_eq!(completes, report.served);
}

#[test]
fn admission_caps_queue_depth_in_the_event_stream() {
    let mut policy = ResiliencePolicy::default();
    policy.admission.enabled = true;
    policy.admission.queue_cap = 6;
    // One slow worker, heavy load: the queue would grow without bound.
    let config = SimulationConfig::new(1, 0.15)
        .seeded(4)
        .with_resilience(policy);
    let (report, events) = traced_run(config, Routing::Central, &FaultPlan::none(), 500.0, 5.0);

    assert!(report.resilience.admission_shed > 0, "overload must shed");
    assert_eq!(report.dropped, report.resilience.admission_shed);
    for e in &events {
        if let Event::Enqueue { depth, queue, .. } = e {
            if *queue == QueueId::Central {
                assert!(
                    *depth as usize <= 6,
                    "admission let the central queue reach {depth}"
                );
            }
        }
    }
    let c = conservation(&events);
    assert!(c.holds(), "conservation violated: {c:?}");
    assert!(c.admissions > 0, "admission sheds must be events");
}

#[test]
fn disabled_policy_is_bit_identical_regardless_of_knobs() {
    // The regression pin for "default = today's behavior": a policy
    // whose switches are off must not perturb the simulation no matter
    // what its (ignored) knobs say.
    let plan = FaultPlan::none().slowdown(0, 2.0, 8.0, 3.0);
    let run = |policy: ResiliencePolicy| {
        traced_run(
            SimulationConfig::new(3, 0.15)
                .seeded(77)
                .stochastic()
                .with_resilience(policy),
            Routing::PerWorkerShortestQueue,
            &plan,
            120.0,
            10.0,
        )
    };
    let (r_default, e_default) = run(ResiliencePolicy::default());

    let mut weird = ResiliencePolicy::default();
    weird.timeout.slack_fraction = 0.01;
    weird.timeout.min_timeout_s = 1e-6;
    weird.retry.backoff_base_s = 5.0;
    weird.retry.jitter_seed = 0xDEAD_BEEF;
    weird.hedge.quantile = 50.0;
    weird.hedge.min_samples = 1;
    weird.admission.queue_cap = 1;
    assert!(weird.is_noop(), "switches stay off");
    let (r_weird, e_weird) = run(weird);

    assert_eq!(r_default, r_weird, "disabled knobs must not leak");
    assert_eq!(e_default, e_weird, "event streams must match exactly");
    assert_eq!(
        serde_json::to_string(&r_default).unwrap(),
        serde_json::to_string(&r_weird).unwrap()
    );
}
