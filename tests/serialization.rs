//! Serialization round trips: policies, policy sets, traces, and
//! simulation reports survive the JSON formats the artifact uses.

use ramsis::core::{generate_policy, Discretization, PoissonArrivals, PolicyConfig, PolicySet};
use ramsis::prelude::*;
use ramsis::sim::RamsisScheme;
use ramsis::workload::OracleMonitor;

fn profile() -> WorkerProfile {
    WorkerProfile::build(
        &ModelCatalog::torchvision_image(),
        Duration::from_millis(150),
        ProfilerConfig::default(),
    )
}

fn quick_policy(profile: &WorkerProfile) -> ramsis::core::WorkerPolicy {
    let config = PolicyConfig::builder(Duration::from_millis(150))
        .workers(4)
        .discretization(Discretization::fixed_length(10))
        .build();
    generate_policy(profile, &PoissonArrivals::per_second(150.0), &config).unwrap()
}

#[test]
fn policy_round_trips_through_file() {
    let profile = profile();
    let policy = quick_policy(&profile);
    let dir = std::env::temp_dir().join("ramsis_policy_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("policy.json");
    std::fs::write(&path, policy.to_json()).unwrap();
    let loaded =
        ramsis::core::WorkerPolicy::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(policy, loaded);
    // The reloaded policy decides identically at every queue state.
    for n in 1..=10usize {
        for slack_ms in [0.0, 40.0, 90.0, 150.0] {
            assert_eq!(
                policy.decide(n, slack_ms / 1e3),
                loaded.decide(n, slack_ms / 1e3),
                "n={n} slack={slack_ms}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reloaded_policy_simulates_identically() {
    let profile = profile();
    let policy = quick_policy(&profile);
    let reloaded = ramsis::core::WorkerPolicy::from_json(&policy.to_json()).unwrap();
    let trace = Trace::constant(150.0, 5.0);
    let sim = Simulation::new(&profile, SimulationConfig::new(4, 0.15).seeded(13))
        .expect("valid simulation config");
    let run = |p: ramsis::core::WorkerPolicy| {
        let mut scheme = RamsisScheme::new(PolicySet::from_policies(vec![p]).unwrap());
        let mut monitor = OracleMonitor::new(trace.clone());
        sim.run(&trace, &mut scheme, &mut monitor)
    };
    assert_eq!(run(policy), run(reloaded));
}

#[test]
fn artifact_map_covers_state_space() {
    let profile = profile();
    let policy = quick_policy(&profile);
    let map = policy.artifact_map(&profile);
    assert_eq!(map.len(), policy.space().len());
    // Every entry decodes to a known model or the wait action.
    for action in map.values() {
        assert!(
            action == "wait" || profile.models.iter().any(|m| action.contains(&m.name)),
            "unknown action {action}"
        );
    }
}

#[test]
fn trace_artifact_format_round_trip() {
    let trace = Trace::twitter_like(9);
    let text = trace.to_artifact_text();
    let parsed = Trace::parse_artifact_text(&text).unwrap();
    assert_eq!(trace.segments(), parsed.segments());
    // The text is one QPS value per line, as the artifact describes.
    assert_eq!(text.lines().count(), trace.segments().len());
}

#[test]
fn report_round_trips() {
    let profile = profile();
    let policy = quick_policy(&profile);
    let trace = Trace::constant(100.0, 3.0);
    let sim =
        Simulation::new(&profile, SimulationConfig::new(4, 0.15)).expect("valid simulation config");
    let mut scheme = RamsisScheme::new(PolicySet::from_policies(vec![policy]).unwrap());
    let mut monitor = OracleMonitor::new(trace.clone());
    let report = sim.run(&trace, &mut scheme, &mut monitor);
    let json = serde_json::to_string(&report).unwrap();
    let back: ramsis::sim::SimulationReport = serde_json::from_str(&json).unwrap();
    assert_eq!(report, back);
}

#[test]
fn policy_set_round_trips() {
    let profile = profile();
    let config = PolicyConfig::builder(Duration::from_millis(150))
        .workers(4)
        .discretization(Discretization::fixed_length(8))
        .build();
    let set = PolicySet::generate_poisson(&profile, &[100.0, 300.0], &config).unwrap();
    let json = serde_json::to_string(&set).unwrap();
    let back: PolicySet = serde_json::from_str(&json).unwrap();
    assert_eq!(set, back);
    assert_eq!(back.select(200.0).design_load_qps, 300.0);
}
