//! Serialization round trips: policies, policy sets, traces, and
//! simulation reports survive the JSON formats the artifact uses.

use ramsis::core::{generate_policy, Discretization, PoissonArrivals, PolicyConfig, PolicySet};
use ramsis::prelude::*;
use ramsis::sim::RamsisScheme;
use ramsis::workload::OracleMonitor;

fn profile() -> WorkerProfile {
    WorkerProfile::build(
        &ModelCatalog::torchvision_image(),
        Duration::from_millis(150),
        ProfilerConfig::default(),
    )
}

fn quick_policy(profile: &WorkerProfile) -> ramsis::core::WorkerPolicy {
    let config = PolicyConfig::builder(Duration::from_millis(150))
        .workers(4)
        .discretization(Discretization::fixed_length(10))
        .build();
    generate_policy(profile, &PoissonArrivals::per_second(150.0), &config).unwrap()
}

#[test]
fn policy_round_trips_through_file() {
    let profile = profile();
    let policy = quick_policy(&profile);
    let dir = std::env::temp_dir().join("ramsis_policy_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("policy.json");
    std::fs::write(&path, policy.to_json()).unwrap();
    let loaded =
        ramsis::core::WorkerPolicy::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(policy, loaded);
    // The reloaded policy decides identically at every queue state.
    for n in 1..=10usize {
        for slack_ms in [0.0, 40.0, 90.0, 150.0] {
            assert_eq!(
                policy.decide(n, slack_ms / 1e3),
                loaded.decide(n, slack_ms / 1e3),
                "n={n} slack={slack_ms}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reloaded_policy_simulates_identically() {
    let profile = profile();
    let policy = quick_policy(&profile);
    let reloaded = ramsis::core::WorkerPolicy::from_json(&policy.to_json()).unwrap();
    let trace = Trace::constant(150.0, 5.0);
    let sim = Simulation::new(&profile, SimulationConfig::new(4, 0.15).seeded(13))
        .expect("valid simulation config");
    let run = |p: ramsis::core::WorkerPolicy| {
        let mut scheme = RamsisScheme::new(PolicySet::from_policies(vec![p]).unwrap());
        let mut monitor = OracleMonitor::new(trace.clone());
        sim.run(&trace, &mut scheme, &mut monitor)
    };
    assert_eq!(run(policy), run(reloaded));
}

#[test]
fn artifact_map_covers_state_space() {
    let profile = profile();
    let policy = quick_policy(&profile);
    let map = policy.artifact_map(&profile);
    assert_eq!(map.len(), policy.space().len());
    // Every entry decodes to a known model or the wait action.
    for action in map.values() {
        assert!(
            action == "wait" || profile.models.iter().any(|m| action.contains(&m.name)),
            "unknown action {action}"
        );
    }
}

#[test]
fn trace_artifact_format_round_trip() {
    let trace = Trace::twitter_like(9);
    let text = trace.to_artifact_text();
    let parsed = Trace::parse_artifact_text(&text).unwrap();
    assert_eq!(trace.segments(), parsed.segments());
    // The text is one QPS value per line, as the artifact describes.
    assert_eq!(text.lines().count(), trace.segments().len());
}

#[test]
fn report_round_trips() {
    let profile = profile();
    let policy = quick_policy(&profile);
    let trace = Trace::constant(100.0, 3.0);
    let sim =
        Simulation::new(&profile, SimulationConfig::new(4, 0.15)).expect("valid simulation config");
    let mut scheme = RamsisScheme::new(PolicySet::from_policies(vec![policy]).unwrap());
    let mut monitor = OracleMonitor::new(trace.clone());
    let report = sim.run(&trace, &mut scheme, &mut monitor);
    let json = serde_json::to_string(&report).unwrap();
    let back: ramsis::sim::SimulationReport = serde_json::from_str(&json).unwrap();
    assert_eq!(report, back);
}

#[test]
fn timeline_accuracy_none_round_trips_as_null() {
    // `TimelineBucket.accuracy` distinguishes "no satisfied completion
    // in the window" (None → JSON null) from a genuine 0% model. Both
    // states must survive a SimulationReport round trip.
    let profile = profile();
    let policy = quick_policy(&profile);
    let trace = Trace::constant(100.0, 3.0);
    let sim = Simulation::new(&profile, SimulationConfig::new(4, 0.15).with_timeline(1.0))
        .expect("valid simulation config");
    let mut scheme = RamsisScheme::new(PolicySet::from_policies(vec![policy]).unwrap());
    let mut monitor = OracleMonitor::new(trace.clone());
    let mut report = sim.run(&trace, &mut scheme, &mut monitor);
    assert!(!report.timeline.is_empty(), "timeline was collected");

    // Force the mixed case: an empty window next to populated ones.
    report.timeline[0].accuracy = None;
    report.timeline[0].served = 0;
    report.timeline[0].violations = 0;

    let json = serde_json::to_string(&report).unwrap();
    assert!(
        json.contains("\"accuracy\":null"),
        "None must serialize as JSON null, got: {json}"
    );
    let back: ramsis::sim::SimulationReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.timeline[0].accuracy, None, "null deserializes to None");
    assert!(
        back.timeline.iter().skip(1).any(|b| b.accuracy.is_some()),
        "populated windows keep their Some(accuracy)"
    );
    assert_eq!(report, back);
}

#[test]
fn adaptive_report_round_trips() {
    // A report with the adaptive runtime's accounting populated — swap
    // events, per-regime counts, divergence — survives JSON intact.
    use ramsis::core::PolicyLibrary;
    use ramsis::sim::AdaptiveRamsis;
    use ramsis::workload::{
        DispersionClass, DivergenceMonitor, DriftDetector, DriftDetectorConfig, RegimeGrid,
        RegimeKey,
    };

    let profile = profile();
    let config = PolicyConfig::builder(Duration::from_millis(150))
        .workers(4)
        .discretization(Discretization::fixed_length(8))
        .build();
    let grid = RegimeGrid::new(vec![120.0, 280.0]);
    let library = PolicyLibrary::generate_poisson_bins(&profile, grid.clone(), 4.0, &config)
        .expect("poisson bins generate");
    let detector = DriftDetector::new(
        grid,
        DriftDetectorConfig::default(),
        RegimeKey::new(0, DispersionClass::Poisson),
    );
    let mut scheme = AdaptiveRamsis::new(&profile, config, library, detector)
        .expect("initial regime is solved")
        .with_shed_policy(ramsis::core::ShedPolicy::Hopeless);

    // Step the load across a grid edge so swap events exist.
    let trace = Trace::from_interval_qps(&[100.0, 100.0, 250.0, 250.0], 5.0, TraceKind::Custom);
    let sim = Simulation::new(&profile, SimulationConfig::new(4, 0.15).seeded(77))
        .expect("valid simulation config");
    let mut monitor = DivergenceMonitor::new(trace.clone());
    let report = sim.run(&trace, &mut scheme, &mut monitor);
    let stats = report.adaptive.as_ref().expect("adaptive stats attached");
    assert!(stats.swaps >= 1 && !stats.regime_events.is_empty());
    assert!(report.divergence.is_some(), "DivergenceMonitor reports");

    let json = serde_json::to_string(&report).unwrap();
    let back: ramsis::sim::SimulationReport = serde_json::from_str(&json).unwrap();
    assert_eq!(report, back);
}

#[test]
fn drift_and_regime_types_round_trip() {
    use ramsis::core::ShedPolicy;
    use ramsis::workload::{DriftDetectorConfig, RegimeGrid};

    let grid = RegimeGrid::new(vec![120.0, 280.0]);
    let json = serde_json::to_string(&grid).unwrap();
    assert_eq!(serde_json::from_str::<RegimeGrid>(&json).unwrap(), grid);

    let config = DriftDetectorConfig::default();
    let json = serde_json::to_string(&config).unwrap();
    assert_eq!(
        serde_json::from_str::<DriftDetectorConfig>(&json).unwrap(),
        config
    );

    for shed in [
        ShedPolicy::Never,
        ShedPolicy::Hopeless,
        ShedPolicy::QueueDepth(16),
    ] {
        let json = serde_json::to_string(&shed).unwrap();
        assert_eq!(serde_json::from_str::<ShedPolicy>(&json).unwrap(), shed);
    }
}

#[test]
fn fitted_arrivals_round_trip() {
    use ramsis::workload::{fit_arrival_process, FitError, FittedArrivals};

    let arrivals: Vec<f64> = (0..200).map(|i| i as f64 * 0.05).collect();
    let fit = fit_arrival_process(&arrivals, 10.0, 1.0).unwrap();
    let json = serde_json::to_string(&fit).unwrap();
    assert_eq!(serde_json::from_str::<FittedArrivals>(&json).unwrap(), fit);

    let err = fit_arrival_process(&[], 10.0, 1.0).unwrap_err();
    let json = serde_json::to_string(&err).unwrap();
    assert_eq!(serde_json::from_str::<FitError>(&json).unwrap(), err);
}

#[test]
fn policy_set_round_trips() {
    let profile = profile();
    let config = PolicyConfig::builder(Duration::from_millis(150))
        .workers(4)
        .discretization(Discretization::fixed_length(8))
        .build();
    let set = PolicySet::generate_poisson(&profile, &[100.0, 300.0], &config).unwrap();
    let json = serde_json::to_string(&set).unwrap();
    let back: PolicySet = serde_json::from_str(&json).unwrap();
    assert_eq!(set, back);
    assert_eq!(back.select(200.0).design_load_qps, 300.0);
}
