//! Adaptive runtime end-to-end: with matched traffic the adaptive
//! scheme is a bit-identical no-op relative to plain RAMSIS, and its
//! accounting is deterministic; under drift it strictly wins.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use ramsis::core::{PolicyLibrary, ShedPolicy};
use ramsis::prelude::*;
use ramsis::sim::{AdaptiveRamsis, RamsisScheme, SimulationReport};
use ramsis::workload::{
    sample_poisson_arrivals, DispersionClass, DriftDetector, DriftDetectorConfig, RegimeGrid,
    RegimeKey,
};

const SLO_S: f64 = 0.15;
const WORKERS: usize = 4;
const SEED: u64 = 0xADA9;

fn profile() -> WorkerProfile {
    WorkerProfile::build(
        &ModelCatalog::torchvision_image(),
        Duration::from_millis(150),
        ProfilerConfig::default(),
    )
}

fn config() -> PolicyConfig {
    PolicyConfig::builder(Duration::from_millis(150))
        .workers(WORKERS)
        .discretization(Discretization::fixed_length(8))
        .build()
}

/// Two rate edges, so 100 QPS sits in bin 0 and 250 QPS in bin 1.
fn grid() -> RegimeGrid {
    RegimeGrid::new(vec![120.0, 280.0])
}

fn adaptive(profile: &WorkerProfile) -> AdaptiveRamsis {
    let library = PolicyLibrary::generate_poisson_bins(
        profile,
        grid(),
        PolicyLibrary::DEFAULT_BURSTY_DISPERSION,
        &config(),
    )
    .expect("poisson bins generate");
    let detector = DriftDetector::new(
        grid(),
        DriftDetectorConfig::default(),
        RegimeKey::new(0, DispersionClass::Poisson),
    );
    AdaptiveRamsis::new(profile, config(), library, detector).expect("initial regime is solved")
}

fn run(
    profile: &WorkerProfile,
    trace: &Trace,
    scheme: &mut dyn ramsis::sim::ServingScheme,
) -> SimulationReport {
    let sim = Simulation::new(profile, SimulationConfig::new(WORKERS, SLO_S).seeded(SEED))
        .expect("valid simulation config");
    let mut monitor = LoadMonitor::new();
    sim.run(trace, scheme, &mut monitor)
}

#[test]
fn matched_traffic_is_a_bit_identical_no_op() {
    // Traffic that never leaves the initial regime: the adaptive scheme
    // must never swap, shed, or fall back, and its report must equal the
    // plain RamsisScheme's bit for bit once the scheme name and the
    // adaptive accounting (which plain RAMSIS lacks) are normalized out.
    let profile = profile();
    let trace = Trace::constant(100.0, 20.0);

    let mut adaptive = adaptive(&profile);
    let stale_set = adaptive
        .library()
        .get(RegimeKey::new(0, DispersionClass::Poisson))
        .expect("initial regime pre-solved")
        .clone();
    let mut adaptive_report = run(&profile, &trace, &mut adaptive);

    let mut plain = RamsisScheme::new(stale_set);
    let plain_report = run(&profile, &trace, &mut plain);

    let stats = adaptive_report.adaptive.take().expect("adaptive stats");
    assert_eq!(stats.swaps, 0, "matched traffic must not swap");
    assert_eq!(stats.shed_hopeless + stats.shed_queue_depth, 0);
    assert_eq!(stats.fallback_decisions, 0);
    assert_eq!(stats.lazy_solves, 0);
    assert!(stats.regime_events.is_empty());
    assert!(stats.refits > 0, "the detector kept watching regardless");
    // Every completion is attributed to the one active regime.
    assert_eq!(stats.per_regime.len(), 1);
    assert_eq!(stats.per_regime[0].regime, "le120qps-poisson");
    assert_eq!(stats.per_regime[0].served, adaptive_report.served);

    adaptive_report.scheme = plain_report.scheme.clone();
    assert_eq!(
        adaptive_report, plain_report,
        "adaptivity must cost nothing until drift happens"
    );
}

#[test]
fn adaptive_stats_serialize_byte_identically_across_reruns() {
    // Same seed, same drifting stream: the full adaptive accounting —
    // swap events, delays, per-regime counts — is reproducible down to
    // the serialized bytes.
    let profile = profile();
    // 20 s at 100 QPS, then 20 s at 250 QPS: one in-grid rate swap.
    let steps: Vec<f64> = std::iter::repeat_n(100.0, 10)
        .chain(std::iter::repeat_n(250.0, 10))
        .collect();
    let trace = Trace::from_interval_qps(&steps, 2.0, TraceKind::Custom);
    let mut rng = ChaCha8Rng::seed_from_u64(SEED);
    let arrivals = sample_poisson_arrivals(&trace, &mut rng);

    let mut reports = Vec::new();
    for _ in 0..2 {
        let mut scheme = adaptive(&profile).with_shed_policy(ShedPolicy::Hopeless);
        let sim = Simulation::new(&profile, SimulationConfig::new(WORKERS, SLO_S).seeded(SEED))
            .expect("valid simulation config");
        let mut monitor = LoadMonitor::new();
        reports.push(sim.run_arrivals(&arrivals, &mut scheme, &mut monitor));
    }

    let stats = reports[0].adaptive.as_ref().expect("adaptive stats");
    assert!(stats.swaps >= 1, "the rate step must commit a swap");
    assert_eq!(stats.regime_events[0].from, "le120qps-poisson");
    // The abrupt step may transit through a bursty regime (the step
    // itself inflates window-count dispersion), but 20 s of steady
    // Poisson at 250 QPS must settle in the higher rate bin.
    let last = stats.regime_events.last().unwrap();
    assert!(
        last.to.starts_with("le280qps"),
        "must settle in the 250 QPS bin, got {}",
        last.to
    );

    let a = serde_json::to_string(reports[0].adaptive.as_ref().unwrap()).unwrap();
    let b = serde_json::to_string(reports[1].adaptive.as_ref().unwrap()).unwrap();
    assert_eq!(a, b, "adaptive accounting must be deterministic");
    // And the whole reports agree, not just the accounting.
    assert_eq!(reports[0], reports[1]);
}

#[test]
fn shedding_converts_violations_into_bounded_loss() {
    // Under a sustained overload burst the Hopeless shed policy trades
    // doomed queries for queue headroom: sheds appear in the report as
    // drops, and every shed is accounted by the scheme.
    let profile = profile();
    let trace = Trace::constant(600.0, 10.0);

    let mut never = adaptive(&profile);
    let never_report = run(&profile, &trace, &mut never);

    let mut shedding = adaptive(&profile).with_shed_policy(ShedPolicy::Hopeless);
    let shed_report = run(&profile, &trace, &mut shedding);

    let stats = shed_report.adaptive.as_ref().expect("adaptive stats");
    assert_eq!(stats.shed_hopeless, shed_report.dropped);
    assert!(stats.shed_hopeless > 0, "overload must trigger sheds");
    assert_eq!(never_report.dropped, 0, "ShedPolicy::Never never drops");
    assert!(
        shed_report.violations < never_report.violations,
        "shedding hopeless queries must cut deadline misses ({} vs {})",
        shed_report.violations,
        never_report.violations
    );
}
