//! Integration: fault injection + graceful policy degradation.
//!
//! Reproduces the `robustness_faults` experiment's headline claim at
//! integration-test scale: under the canonical fault schedule
//! ([`FaultPlan::canonical`] — 1-of-4 workers down for 30 s, a 2×
//! slowdown, a 3× arrival surge), RAMSIS with per-live-worker-count
//! policy sets and a fastest-model fallback achieves a strictly lower
//! miss-or-loss rate than RAMSIS running its stale nominal-cluster
//! policies. Both [`CrashPolicy`] variants are exercised: the headline
//! comparison under the default requeue policy, and loss accounting
//! under drop.

use std::sync::OnceLock;
use std::time::Duration;

use ramsis_core::{DegradablePolicySet, Discretization, FallbackPolicy, PolicyConfig, PolicySet};
use ramsis_profiles::{ModelCatalog, ProfilerConfig, WorkerProfile};
use ramsis_sim::{
    CrashPolicy, DegradingRamsis, FaultPlan, RamsisScheme, ServingScheme, Simulation,
    SimulationConfig, SimulationReport,
};
use ramsis_workload::{LoadMonitor, Trace};

const SLO_S: f64 = 0.15;
const WORKERS: usize = 4;
const LOAD_QPS: f64 = 100.0;
const DURATION_S: f64 = 60.0;
const SEED: u64 = 0xFA17;

fn profile() -> &'static WorkerProfile {
    static PROFILE: OnceLock<WorkerProfile> = OnceLock::new();
    PROFILE.get_or_init(|| {
        WorkerProfile::build(
            &ModelCatalog::torchvision_image(),
            Duration::from_millis(150),
            ProfilerConfig::default(),
        )
    })
}

/// Policy sets shared by every test in this file (generation dominates
/// the test's runtime).
fn degradable() -> &'static DegradablePolicySet {
    static SETS: OnceLock<DegradablePolicySet> = OnceLock::new();
    SETS.get_or_init(|| {
        let config = PolicyConfig::builder(Duration::from_secs_f64(SLO_S))
            .workers(WORKERS)
            .discretization(Discretization::fixed_length(10))
            .build();
        // Cluster-level design loads spanning the base load up to the
        // 3x surge peak with headroom.
        DegradablePolicySet::generate_poisson(profile(), &[50.0, 100.0, 150.0, 330.0], &config, 2)
            .expect("generation over valid loads")
    })
}

fn run(scheme: &mut dyn ServingScheme, policy: CrashPolicy) -> SimulationReport {
    let trace = Trace::constant(LOAD_QPS, DURATION_S);
    let plan = FaultPlan::canonical(WORKERS).with_crash_policy(policy);
    let sim = Simulation::new(
        profile(),
        SimulationConfig::new(WORKERS, SLO_S).seeded(SEED),
    )
    .expect("valid config");
    let mut monitor = LoadMonitor::new();
    sim.run_faulted(&trace, &plan, scheme, &mut monitor)
        .expect("canonical plan validates")
}

fn degrading_scheme() -> DegradingRamsis {
    DegradingRamsis::new(
        degradable().clone(),
        FallbackPolicy::fastest(profile()).expect("profile has models"),
    )
}

fn stale_scheme() -> RamsisScheme {
    let full: PolicySet = degradable().full().clone();
    RamsisScheme::new(full)
}

#[test]
fn degradation_beats_stale_policies_with_requeue() {
    let mut degrading = degrading_scheme();
    let mut stale = stale_scheme();
    let r_degrading = run(&mut degrading, CrashPolicy::RequeueToSurvivors);
    let r_stale = run(&mut stale, CrashPolicy::RequeueToSurvivors);

    // Requeue loses nothing: every arrival is eventually served.
    assert_eq!(r_degrading.served, r_degrading.total_arrivals);
    assert_eq!(r_stale.served, r_stale.total_arrivals);
    assert!(r_degrading.faults.crash_requeued > 0);

    // The headline acceptance criterion.
    assert!(
        r_degrading.miss_or_loss_rate() < r_stale.miss_or_loss_rate(),
        "degrading {} must be strictly below stale {}",
        r_degrading.miss_or_loss_rate(),
        r_stale.miss_or_loss_rate()
    );

    // Downtime is the canonical 30 s outage of worker 0.
    assert!(
        (r_degrading.faults.downtime_s - 30.0).abs() < 0.1,
        "downtime {}",
        r_degrading.faults.downtime_s
    );
    // Fault windows bracket the damage: violation density inside them
    // is higher than outside.
    assert!(
        r_degrading.faults.violation_rate_in_fault()
            > r_degrading.faults.violation_rate_outside_fault()
    );
}

#[test]
fn drop_policy_accounts_crash_losses() {
    // The Drop variant sheds the crashed worker's displaced queries
    // instead of requeuing them; accounting must stay conservative for
    // both schemes, and losses must show up in the loss-side metrics.
    let mut degrading = degrading_scheme();
    let mut stale = stale_scheme();
    let r_degrading = run(&mut degrading, CrashPolicy::Drop);
    let r_stale = run(&mut stale, CrashPolicy::Drop);

    for r in [&r_degrading, &r_stale] {
        assert!(r.faults.crash_dropped > 0);
        assert!(r.dropped >= r.faults.crash_dropped);
        assert_eq!(r.served + r.dropped, r.total_arrivals);
        assert!(r.loss_rate() > 0.0);
        // Drop never requeues.
        assert_eq!(r.faults.crash_requeued, 0);
    }
    // Both runs shed the same displaced set at the crash instant: same
    // seed, same arrivals, same routing up to t = 10 s.
    assert_eq!(
        r_degrading.faults.crash_dropped,
        r_stale.faults.crash_dropped
    );
}

#[test]
fn faulted_runs_are_deterministic_and_serializable() {
    let r1 = run(&mut degrading_scheme(), CrashPolicy::RequeueToSurvivors);
    let r2 = run(&mut degrading_scheme(), CrashPolicy::RequeueToSurvivors);
    assert_eq!(r1, r2);

    // The report, fault stats included, survives a serde round trip.
    let json = serde_json::to_string(&r1).unwrap();
    let back: SimulationReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, r1);
    assert_eq!(back.faults.downtime_s, r1.faults.downtime_s);
    assert_eq!(back.faults.crash_requeued, r1.faults.crash_requeued);
}

#[test]
fn fallback_keeps_serving_below_the_presolved_floor() {
    // Crash two of four workers: live = 2 is the floor of the set, so
    // policies still apply; crash a third and only the fallback is
    // left. Whatever the regime, every arrival must still be served.
    let trace = Trace::constant(LOAD_QPS * 0.5, 30.0);
    let plan = FaultPlan::none()
        .crash(0, 5.0)
        .crash(1, 5.0)
        .crash(2, 5.0)
        .recover(0, 20.0)
        .recover(1, 20.0)
        .recover(2, 20.0);
    let sim = Simulation::new(
        profile(),
        SimulationConfig::new(WORKERS, SLO_S).seeded(SEED ^ 7),
    )
    .expect("valid config");
    let mut scheme = degrading_scheme();
    let mut monitor = LoadMonitor::new();
    let report = sim
        .run_faulted(&trace, &plan, &mut scheme, &mut monitor)
        .expect("plan validates");
    assert_eq!(report.served, report.total_arrivals);
    assert_eq!(report.dropped, 0);
    assert!(
        scheme.fallback_decisions() > 0,
        "one live worker is below the pre-solved floor of 2"
    );
}
