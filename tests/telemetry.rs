//! Telemetry integration: the recorded event stream is deterministic,
//! conserves every query, and reconstructs the engine's own counters
//! exactly — which is what makes traces trustworthy for
//! miss-attribution.

use std::collections::HashMap;

use ramsis::baselines::JellyfishPlus;
use ramsis::core::{MissPolicy, PolicySet};
use ramsis::prelude::*;
use ramsis::sim::{FastestFixed, FaultPlan, RamsisScheme, ResiliencePolicy, Routing};
use ramsis::telemetry::{
    aggregates, conservation, is_binary_stream, parse_bin_tolerant, parse_jsonl, reconstruct_spans,
    reconstruct_spans_sampled, window_breakdown, write_bin, write_jsonl, Event, JsonlSink,
    QuerySpan, SamplePolicy, SamplingSink, TelemetrySink, VecSink,
};
use ramsis::workload::OracleMonitor;

fn profile() -> &'static WorkerProfile {
    use std::sync::OnceLock;
    static P: OnceLock<WorkerProfile> = OnceLock::new();
    P.get_or_init(|| {
        WorkerProfile::build(
            &ModelCatalog::torchvision_image(),
            Duration::from_millis(150),
            ProfilerConfig::default(),
        )
    })
}

/// A JF+ run needs no offline policies; the workhorse for trace checks.
fn traced_jf_run(seed: u64) -> (SimulationReport, Vec<Event>) {
    let trace = Trace::constant(800.0, 10.0);
    let sim = Simulation::new(profile(), SimulationConfig::new(8, 0.15).seeded(seed))
        .expect("valid simulation config");
    let mut scheme = JellyfishPlus::new(profile(), 8);
    let mut monitor = OracleMonitor::new(trace.clone());
    let mut sink = VecSink::new();
    let report = sim.run_traced(&trace, &mut scheme, &mut monitor, &mut sink);
    (report, sink.into_events())
}

/// An overloaded RAMSIS drop-policy run: exercises `Shed` events too.
fn traced_shedding_run() -> (SimulationReport, Vec<Event>) {
    let workers = 2;
    let load = 500.0;
    let config = PolicyConfig::builder(Duration::from_millis(150))
        .workers(workers)
        .discretization(Discretization::fixed_length(15))
        .on_miss(MissPolicy::Drop)
        .build();
    let set = PolicySet::generate_poisson(profile(), &[load], &config).unwrap();
    let trace = Trace::constant(load, 10.0);
    let sim = Simulation::new(profile(), SimulationConfig::new(workers, 0.15).seeded(21))
        .expect("valid simulation config");
    let mut scheme = RamsisScheme::new(set);
    let mut monitor = OracleMonitor::new(trace.clone());
    let mut sink = VecSink::new();
    let report = sim.run_traced(&trace, &mut scheme, &mut monitor, &mut sink);
    (report, sink.into_events())
}

#[test]
fn seeded_rerun_gives_byte_identical_jsonl() {
    let serialize = |events: &[Event]| {
        let mut sink = JsonlSink::new(Vec::new());
        for e in events {
            sink.record(e);
        }
        String::from_utf8(sink.finish().unwrap()).unwrap()
    };
    let (ra, ea) = traced_jf_run(7);
    let (rb, eb) = traced_jf_run(7);
    assert_eq!(ra, rb, "seeded reports must be identical");
    let (ja, jb) = (serialize(&ea), serialize(&eb));
    assert!(!ja.is_empty());
    assert_eq!(ja, jb, "seeded event logs must be byte-identical");
    // And the log round-trips losslessly.
    assert_eq!(parse_jsonl(&ja).unwrap(), ea);
    // A different seed gives a different stream.
    let (_, ec) = traced_jf_run(8);
    assert_ne!(serialize(&ec), ja);
}

#[test]
fn trace_conserves_every_query() {
    let (report, events) = traced_jf_run(42);
    let c = conservation(&events);
    assert!(c.holds(), "conservation violated: {c:?}");
    assert_eq!(c.arrivals, report.total_arrivals);
    assert_eq!(c.completions, report.served);
    assert_eq!(c.drops + c.sheds, report.dropped);
    assert_eq!(c.anomalies, 0);
}

#[test]
fn event_aggregates_match_engine_counters_exactly() {
    for (report, events) in [traced_jf_run(3), traced_shedding_run()] {
        let a = aggregates(&events);
        assert_eq!(a.arrivals, report.total_arrivals);
        assert_eq!(a.served, report.served);
        assert_eq!(a.violations, report.violations);
        assert_eq!(a.dropped, report.dropped);
        assert!((a.violation_rate() - report.violation_rate).abs() < 1e-12);
        // The exact event-side mean agrees with the engine's streaming
        // mean to floating-point accumulation error.
        assert!(
            (a.mean_response_s() - report.mean_response_s).abs() < 1e-6,
            "event mean {} vs engine mean {}",
            a.mean_response_s(),
            report.mean_response_s
        );
        // Same histogram bucketing on both sides: identical percentiles.
        let pctl = |p: f64| a.response.percentile(p).map_or(0.0, |ns| ns as f64 / 1e9);
        assert_eq!(pctl(50.0), report.p50_response_s);
        assert_eq!(pctl(95.0), report.p95_response_s);
        assert_eq!(pctl(99.0), report.p99_response_s);
    }
}

#[test]
fn shedding_run_records_shed_events() {
    let (report, events) = traced_shedding_run();
    assert!(report.dropped > 0, "setup must shed");
    let c = conservation(&events);
    assert!(c.holds(), "conservation violated: {c:?}");
    assert!(c.sheds > 0, "policy sheds must appear as Shed events");
    assert_eq!(c.sheds + c.drops, report.dropped);
    // Every shed has a matching audited Drop decision batch.
    let decision_drops: u64 = events
        .iter()
        .filter_map(|e| match e {
            Event::PolicyDecision {
                action: ramsis::telemetry::Action::Drop { count },
                ..
            } => Some(u64::from(*count)),
            _ => None,
        })
        .sum();
    assert_eq!(decision_drops, c.sheds);
}

#[test]
fn histogram_percentiles_agree_with_exact() {
    // Reconstruct the exact response distribution from Complete events
    // and pin the engine's streaming percentiles to the log-bucket
    // guarantee (< 2^-7 relative error; extremes exact).
    let (report, events) = traced_jf_run(11);
    let mut exact_ns: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            Event::Complete { response_ns, .. } => Some(*response_ns),
            _ => None,
        })
        .collect();
    assert!(exact_ns.len() as u64 == report.served && report.served > 100);
    exact_ns.sort_unstable();
    for (p, got_s) in [
        (50.0, report.p50_response_s),
        (95.0, report.p95_response_s),
        (99.0, report.p99_response_s),
    ] {
        let rank = ((p / 100.0 * exact_ns.len() as f64).ceil() as usize).clamp(1, exact_ns.len());
        let exact = exact_ns[rank - 1] as f64 / 1e9;
        let rel = (got_s - exact).abs() / exact;
        assert!(
            rel < 1.0 / 128.0,
            "p{p}: streaming {got_s} vs exact {exact} (rel {rel:.5})"
        );
    }
}

#[test]
fn window_breakdown_totals_match_aggregates() {
    let (report, events) = traced_jf_run(5);
    let windows = window_breakdown(&events, 1_000_000_000);
    let total =
        |f: fn(&ramsis::telemetry::WindowStats) -> u64| -> u64 { windows.iter().map(f).sum() };
    assert_eq!(total(|w| w.arrivals), report.total_arrivals);
    assert_eq!(total(|w| w.completions), report.served);
    assert_eq!(total(|w| w.violations), report.violations);
    assert_eq!(total(|w| w.sheds) + total(|w| w.drops), report.dropped);
}

/// A resilience-heavy run: a hard straggler under round-robin with
/// timeouts, retries, hedging, and admission all enabled — every new
/// event kind appears in the stream.
fn traced_resilient_run(seed: u64) -> (SimulationReport, Vec<Event>) {
    let trace = Trace::constant(70.0, 20.0);
    let plan = FaultPlan::none().slowdown(0, 1.0, 18.0, 12.0);
    let sim = Simulation::new(
        profile(),
        SimulationConfig::new(3, 0.15)
            .seeded(seed)
            .stochastic()
            .with_resilience(ResiliencePolicy::all_on()),
    )
    .expect("valid simulation config");
    let mut scheme = FastestFixed::new(profile().fastest_model(), Routing::PerWorkerRoundRobin);
    let mut monitor = LoadMonitor::new();
    let mut sink = VecSink::new();
    let report = sim
        .run_faulted_traced(&trace, &plan, &mut scheme, &mut monitor, &mut sink)
        .expect("plan validates");
    (report, sink.into_events())
}

#[test]
fn conservation_extends_to_resilience_events() {
    let (report, events) = traced_resilient_run(13);
    let rs = &report.resilience;
    assert!(
        rs.timeouts > 0 && rs.retries > 0,
        "setup must exercise timeout + retry: {rs:?}"
    );
    let c = conservation(&events);
    assert!(c.holds(), "conservation violated: {c:?}");
    // Event-derived resilience counters agree with the engine's.
    let a = aggregates(&events);
    assert_eq!(a.timeouts, rs.timeouts);
    assert_eq!(a.retries, rs.retries);
    assert_eq!(a.hedges_issued, rs.hedges_issued);
    assert_eq!(a.hedges_cancelled, rs.hedges_cancelled);
    assert_eq!(a.admissions, rs.admission_shed);
    assert_eq!(a.arrivals, report.total_arrivals);
    assert_eq!(a.served, report.served);
    assert_eq!(a.dropped, report.dropped);
}

#[test]
fn every_query_terminates_exactly_once_despite_hedges_and_retries() {
    // Hedged duplicates and retried attempts must collapse to exactly
    // one terminal event (Complete / Shed / Admission) per query id.
    let (report, events) = traced_resilient_run(29);
    let mut terminals: HashMap<u64, u32> = HashMap::new();
    for e in &events {
        let id = match e {
            Event::Complete { query, .. }
            | Event::Shed { query, .. }
            | Event::Admission { query, .. } => *query,
            _ => continue,
        };
        *terminals.entry(id).or_insert(0) += 1;
    }
    assert_eq!(terminals.len() as u64, report.total_arrivals);
    for (id, n) in &terminals {
        assert_eq!(*n, 1, "query {id} terminated {n} times");
    }
}

#[test]
fn retry_attempts_are_attributed_to_one_query_id() {
    // A retried query keeps its id across attempts: its Timeout events
    // number 1, 2, … and each Retry matches the Timeout that caused it.
    let (report, events) = traced_resilient_run(41);
    assert!(report.resilience.retries > 0, "setup must retry");
    let mut timeout_attempts: HashMap<u64, Vec<u32>> = HashMap::new();
    let mut retry_attempts: HashMap<u64, Vec<u32>> = HashMap::new();
    for e in &events {
        match e {
            Event::Timeout { query, attempt, .. } => {
                timeout_attempts.entry(*query).or_default().push(*attempt);
            }
            Event::Retry { query, attempt, .. } => {
                retry_attempts.entry(*query).or_default().push(*attempt);
            }
            _ => {}
        }
    }
    assert!(!retry_attempts.is_empty());
    for (id, attempts) in &timeout_attempts {
        let expect: Vec<u32> = (1..=attempts.len() as u32).collect();
        assert_eq!(
            attempts, &expect,
            "query {id} timeout attempts must count 1..n"
        );
    }
    for (id, attempts) in &retry_attempts {
        // Every retry follows a timeout of the same query and attempt.
        let t = &timeout_attempts[id];
        for a in attempts {
            assert!(
                t.contains(a),
                "query {id} retry attempt {a} without a matching timeout"
            );
        }
    }
}

#[test]
fn empty_run_report_and_trace_are_empty() {
    // Zero arrivals: every rate and percentile is defined as zero, and
    // the trace holds vacuously.
    let sim = Simulation::new(profile(), SimulationConfig::new(2, 0.15).seeded(1))
        .expect("valid simulation config");
    let mut scheme = JellyfishPlus::new(profile(), 2);
    let mut monitor = LoadMonitor::new();
    let mut sink = VecSink::new();
    let report = sim.run_arrivals_traced(&[], &mut scheme, &mut monitor, &mut sink);
    assert_eq!(report.served, 0);
    assert_eq!(report.mean_response_s, 0.0);
    assert_eq!(report.p50_response_s, 0.0);
    assert_eq!(report.p95_response_s, 0.0);
    assert_eq!(report.p99_response_s, 0.0);
    assert_eq!(report.violation_rate, 0.0);
    let events = sink.into_events();
    let lifecycle = events
        .iter()
        .filter(|e| matches!(e, Event::Arrival { .. } | Event::Complete { .. }))
        .count();
    assert_eq!(lifecycle, 0, "no queries, no lifecycle events");
    assert!(conservation(&events).holds());
}

// ---------------------------------------------------------------------
// Binary codec + deterministic query-coherent sampling (ISSUE 10)
// ---------------------------------------------------------------------

/// The resilient scenario run live through a `SamplingSink` — the
/// engine must not notice the wrapper at all. Returns the report, the
/// surviving stream, and the count of events the sampler withheld.
fn traced_resilient_sampled(seed: u64, rate: f64) -> (SimulationReport, Vec<Event>, u64) {
    let trace = Trace::constant(70.0, 20.0);
    let plan = FaultPlan::none().slowdown(0, 1.0, 18.0, 12.0);
    let sim = Simulation::new(
        profile(),
        SimulationConfig::new(3, 0.15)
            .seeded(seed)
            .stochastic()
            .with_resilience(ResiliencePolicy::all_on()),
    )
    .expect("valid simulation config");
    let mut scheme = FastestFixed::new(profile().fastest_model(), Routing::PerWorkerRoundRobin);
    let mut monitor = LoadMonitor::new();
    let policy = SamplePolicy::new(rate, seed).expect("valid sampling rate");
    let mut sink = SamplingSink::new(VecSink::new(), policy);
    let report = sim
        .run_faulted_traced(&trace, &plan, &mut scheme, &mut monitor, &mut sink)
        .expect("plan validates");
    let withheld = sink.sampled_out_events();
    (report, sink.finish().into_events(), withheld)
}

#[test]
fn report_is_byte_identical_at_every_sample_rate() {
    // Exactness under sampling, part 1: the engine's report never
    // depends on what the sink keeps. Tracing off, tracing full, and
    // sampling at any rate all serialize to the same bytes.
    let (full_report, full_events) = traced_resilient_run(57);
    let baseline = serde_json::to_string(&full_report).unwrap();
    for rate in [1.0, 0.1, 0.01] {
        let (report, events, withheld) = traced_resilient_sampled(57, rate);
        assert_eq!(
            serde_json::to_string(&report).unwrap(),
            baseline,
            "report must be byte-identical at rate {rate}"
        );
        // Every event is either delivered or counted as withheld.
        assert_eq!(
            events.len() as u64 + withheld,
            full_events.len() as u64,
            "event accounting at rate {rate}"
        );
        if rate >= 1.0 {
            assert_eq!(events, full_events, "rate 1.0 must pass everything through");
            assert_eq!(withheld, 0);
        }
    }
}

#[test]
fn sampled_stream_is_an_exact_subsequence_that_keeps_every_violation() {
    let (_, full) = traced_resilient_run(57);
    let violations = |evs: &[Event]| {
        evs.iter()
            .filter(|e| matches!(e, Event::Complete { violated: true, .. }))
            .count()
    };
    assert!(violations(&full) > 0, "setup must violate");
    for rate in [0.1, 0.01] {
        let (_, sampled, withheld) = traced_resilient_sampled(57, rate);
        assert!(withheld > 0, "rate {rate} must sample something out");
        // Order-preserving subsequence: sampling never reorders,
        // rewrites, or fabricates an event.
        let mut rest = full.as_slice();
        for e in &sampled {
            let i = rest
                .iter()
                .position(|f| f == e)
                .unwrap_or_else(|| panic!("rate {rate}: sampled event {e:?} not in full stream"));
            rest = &rest[i + 1..];
        }
        // Query coherence keeps conservation intact: a query keeps all
        // of its lifecycle events or none of them.
        let c = conservation(&sampled);
        assert!(c.holds(), "rate {rate}: conservation violated: {c:?}");
        // The tail-keep rules retain every SLO violation exactly.
        assert_eq!(
            violations(&sampled),
            violations(&full),
            "rate {rate}: violating completions must always be kept"
        );
    }
}

#[test]
fn sampled_spans_reconstruct_exactly_with_zero_orphans() {
    // A kept query keeps all its events, so every span surviving
    // sampling reconstructs identically to the full trace — sampled
    // out, never degraded.
    let (_, full) = traced_resilient_run(57);
    let full_log = reconstruct_spans(&full);
    let (_, sampled, _) = traced_resilient_sampled(57, 0.1);
    let log = reconstruct_spans_sampled(&sampled, 0.1);
    assert_eq!(log.sample_rate, Some(0.1));
    assert_eq!(log.orphan_events, 0, "a kept query keeps all its events");
    assert_eq!(log.degraded_spans, 0, "sampling must never degrade a span");
    assert!(log.est_sampled_out > 0.0, "boring queries were removed");
    assert!(
        !log.spans.is_empty() && log.spans.len() < full_log.spans.len(),
        "sampling at 10% must keep some spans and drop others: {} of {}",
        log.spans.len(),
        full_log.spans.len()
    );
    let by_id: HashMap<u64, &QuerySpan> = full_log.spans.iter().map(|s| (s.query, s)).collect();
    for span in &log.spans {
        assert_eq!(
            Some(span),
            by_id.get(&span.query).copied(),
            "span of query {} must match the full trace exactly",
            span.query
        );
    }
}

#[test]
fn binary_codec_round_trips_a_real_traced_run() {
    let (_, events) = traced_resilient_run(13);
    let bin = write_bin(&events, None);
    assert!(is_binary_stream(&bin));
    let parsed = parse_bin_tolerant(&bin).unwrap();
    assert_eq!(parsed.events, events);
    assert!(parsed.torn_tail.is_none());
    assert_eq!(parsed.unknown_events, 0);
    // The compactness the codec exists for: well under the JSONL size.
    let jsonl = write_jsonl(&events, None);
    assert!(
        bin.len() * 3 < jsonl.len(),
        "binary must be under a third of the JSONL size: {} vs {}",
        bin.len(),
        jsonl.len()
    );
    // Sampling provenance survives the binary header.
    let (_, sampled, _) = traced_resilient_sampled(13, 0.01);
    let bin = write_bin(&sampled, Some((0.01, 13)));
    let parsed = parse_bin_tolerant(&bin).unwrap();
    assert_eq!(parsed.sample_rate, Some(0.01));
    assert_eq!(parsed.sample_seed, Some(13));
    assert_eq!(parsed.events, sampled);
}

#[test]
fn file_backed_sink_flushes_to_the_canonical_bytes() {
    // The checkpoint attest path flushes the sink's BufWriter; a
    // finished file must hold exactly the canonical serialization —
    // nothing trapped in the buffer, nothing extra.
    let (_, events) = traced_jf_run(19);
    let dir = std::env::temp_dir().join("ramsis_telemetry_flush");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.jsonl");
    let mut sink = JsonlSink::create(&path).unwrap();
    for e in &events {
        sink.record(e);
        sink.flush(); // mid-run checkpoint flushes must be harmless
    }
    sink.finish().unwrap();
    let got = std::fs::read_to_string(&path).unwrap();
    assert_eq!(got, write_jsonl(&events, None));
    std::fs::remove_file(&path).ok();
}
