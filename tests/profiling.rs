//! Profiling contract through the facade: an attached-but-disabled
//! profiler leaves the report and the event stream byte-identical to
//! the unprofiled engine, an enabled profiler observes without
//! perturbing the run, and the span reconstructor's critical path
//! conserves every completed query's measured response time exactly.

use ramsis::prelude::*;
use ramsis::sim::{FastestFixed, FaultPlan, ResiliencePolicy, Routing};
use ramsis::telemetry::{critical_path, reconstruct_spans, JsonlSink, Profiler};

fn profile() -> &'static WorkerProfile {
    use std::sync::OnceLock;
    static P: OnceLock<WorkerProfile> = OnceLock::new();
    P.get_or_init(|| {
        WorkerProfile::build(
            &ModelCatalog::torchvision_image(),
            Duration::from_millis(150),
            ProfilerConfig::default(),
        )
    })
}

/// A resilience-heavy fixture: straggler slowdown plus a crash window
/// under timeouts, retries, and hedging — every span segment kind
/// (wait, service, wasted, backoff, hedge overlap) gets exercised.
fn resilience_fixture() -> (SimulationConfig, FaultPlan, Trace) {
    let mut policy = ResiliencePolicy::default();
    policy.timeout.enabled = true;
    policy.retry.max_retries = 3;
    policy.hedge.enabled = true;
    policy.hedge.min_samples = 16;
    policy.hedge.quantile = 85.0;
    policy.hedge.min_delay_s = 0.001;
    let plan = FaultPlan::none()
        .slowdown(0, 2.0, 16.0, 10.0)
        .crash(1, 6.0)
        .recover(1, 12.0);
    let config = SimulationConfig::new(4, 0.15)
        .seeded(4242)
        .stochastic()
        .with_resilience(policy);
    (config, plan, Trace::constant(80.0, 18.0))
}

/// One traced run; `prof: None` uses the unprofiled entry point, so the
/// comparison spans two genuinely different code paths.
fn traced_run(prof: Option<&mut Profiler>) -> (SimulationReport, Vec<u8>) {
    let (config, plan, trace) = resilience_fixture();
    let sim = Simulation::new(profile(), config).expect("valid simulation config");
    let mut scheme = FastestFixed::new(profile().fastest_model(), Routing::PerWorkerRoundRobin);
    let mut monitor = LoadMonitor::new();
    let mut sink = JsonlSink::new(Vec::new());
    let report = match prof {
        None => sim
            .run_faulted_traced(&trace, &plan, &mut scheme, &mut monitor, &mut sink)
            .expect("plan validates"),
        Some(p) => sim
            .run_faulted_traced_profiled(&trace, &plan, &mut scheme, &mut monitor, &mut sink, p)
            .expect("plan validates"),
    };
    (report, sink.finish().expect("in-memory sink flushes"))
}

#[test]
fn profiler_never_perturbs_the_run() {
    let (base_report, base_bytes) = traced_run(None);
    assert!(base_report.resilience.timeouts > 0, "fixture times out");
    assert!(base_report.resilience.hedges_issued > 0, "fixture hedges");

    // Disabled profiler: byte-identical event stream, equal report.
    let mut off = Profiler::off();
    let (off_report, off_bytes) = traced_run(Some(&mut off));
    assert_eq!(base_report, off_report, "off-profiler report diverged");
    assert_eq!(base_bytes, off_bytes, "off-profiler event stream diverged");
    assert!(!off.report().enabled);

    // Enabled profiler: observes the run without changing it.
    let mut on = Profiler::on();
    let (on_report, on_bytes) = traced_run(Some(&mut on));
    assert_eq!(base_report, on_report, "on-profiler report diverged");
    assert_eq!(base_bytes, on_bytes, "on-profiler event stream diverged");
    let pr = on.report();
    assert!(pr.enabled && pr.events_processed > 0 && pr.wall_ns > 0);
    assert!(!pr.phases.is_empty(), "phase timings were collected");
    assert!(pr.counter("dispatches") > 0);
    assert_eq!(pr.counter("heap_pushes"), pr.counter("heap_pops"));
    assert!(pr.counter("timeouts_fired") > 0);
    assert!(pr.counter("hedges_issued") > 0);
}

#[test]
fn critical_path_conserves_measured_response_times() {
    let (report, bytes) = traced_run(None);
    let text = String::from_utf8(bytes).unwrap();
    let parsed = ramsis::telemetry::parse_jsonl(&text).expect("clean log parses strictly");

    let log = reconstruct_spans(&parsed);
    let cp = critical_path(&log, 5);
    assert_eq!(cp.completed, report.served, "span count matches report");
    assert_eq!(cp.orphan_events, 0, "full trace has no orphans");
    assert_eq!(cp.conservation_violations, 0, "segment sums must conserve");

    // The per-span identity, checked exactly — wait + service + wasted
    // + backoff + hedge overlap telescopes to the engine's measured
    // response time, with zero rounding slack.
    let mut checked = 0u64;
    for span in &log.spans {
        if let Some(response_ns) = span.response_ns {
            assert_eq!(
                span.segment_sum(),
                response_ns,
                "query {} leaks time: segments {:?} vs response {}",
                span.query,
                (
                    span.wait_ns,
                    span.service_ns,
                    span.wasted_ns,
                    span.backoff_ns,
                    span.hedge_overlap_ns
                ),
                response_ns
            );
            assert_eq!(span.conserved(), Some(true));
            checked += 1;
        }
    }
    assert_eq!(checked, report.served, "every completion was checked");
    assert!(
        cp.retried > 0 && cp.hedged > 0,
        "fixture must put resilience on the critical path (retried {}, hedged {})",
        cp.retried,
        cp.hedged
    );
}
