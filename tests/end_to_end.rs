//! End-to-end integration: offline policy generation → online simulation
//! → guarantee validation, spanning every crate in the workspace.

use ramsis::baselines::JellyfishPlus;
use ramsis::prelude::*;
use ramsis::sim::RamsisScheme;
use ramsis::workload::OracleMonitor;

fn profile() -> &'static WorkerProfile {
    use std::sync::OnceLock;
    static P: OnceLock<WorkerProfile> = OnceLock::new();
    P.get_or_init(|| {
        WorkerProfile::build(
            &ModelCatalog::torchvision_image(),
            Duration::from_millis(150),
            ProfilerConfig::default(),
        )
    })
}

fn quick_config(workers: usize) -> PolicyConfig {
    PolicyConfig::builder(Duration::from_millis(150))
        .workers(workers)
        .discretization(Discretization::fixed_length(25))
        .build()
}

#[test]
fn guarantees_bracket_simulation_across_loads() {
    // §5.1/§7.3.1: for every satisfiable load, expected accuracy is a
    // lower bound and expected violation rate an upper bound on the
    // deterministic simulation.
    let workers = 8;
    for load in [100.0, 250.0, 400.0] {
        let set = PolicySet::generate_poisson(profile(), &[load], &quick_config(workers)).unwrap();
        let g = *set.policies()[0].guarantees();
        let trace = Trace::constant(load, 20.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(workers, 0.15).seeded(99))
            .expect("valid simulation config");
        let mut scheme = RamsisScheme::new(set);
        let mut monitor = OracleMonitor::new(trace.clone());
        let report = sim.run(&trace, &mut scheme, &mut monitor);
        assert!(
            report.accuracy_per_satisfied_query >= g.expected_accuracy - 1.0,
            "load {load}: observed {} < expected {}",
            report.accuracy_per_satisfied_query,
            g.expected_accuracy
        );
        assert!(
            report.violation_rate <= g.expected_violation_rate + 0.02,
            "load {load}: observed {} > expected {}",
            report.violation_rate,
            g.expected_violation_rate
        );
    }
}

#[test]
fn ramsis_beats_load_granular_baseline() {
    // The headline claim (§7.2): equal or higher accuracy than a
    // load-granular baseline at every satisfiable constant load.
    let workers = 8;
    let loads = [100.0, 250.0, 400.0];
    let set = PolicySet::generate_poisson(profile(), &loads, &quick_config(workers)).unwrap();
    for load in loads {
        let trace = Trace::constant(load, 20.0);
        let sim = Simulation::new(profile(), SimulationConfig::new(workers, 0.15).seeded(7))
            .expect("valid simulation config");
        let mut ramsis = RamsisScheme::new(set.clone());
        let mut m1 = OracleMonitor::new(trace.clone());
        let r = sim.run(&trace, &mut ramsis, &mut m1);
        let mut jellyfish = JellyfishPlus::new(profile(), workers);
        let mut m2 = OracleMonitor::new(trace.clone());
        let j = sim.run(&trace, &mut jellyfish, &mut m2);
        // At very light loads maximal batching can cost RAMSIS a
        // fraction of a percent against the baselines' batch-1 pulls
        // (the paper also reports parity, not wins, at the load range's
        // extremes); everywhere else RAMSIS must win outright.
        let slack = if load <= 150.0 { 0.6 } else { -0.5 };
        assert!(
            r.accuracy_per_satisfied_query >= j.accuracy_per_satisfied_query - slack,
            "load {load}: RAMSIS {} vs Jellyfish+ {}",
            r.accuracy_per_satisfied_query,
            j.accuracy_per_satisfied_query
        );
        assert!(r.violation_rate < 0.05, "load {load}: {}", r.violation_rate);
    }
}

#[test]
fn online_policy_switching_follows_load() {
    // A rising load trace: the moving-average monitor should switch to
    // higher-load (faster-model) policies without violating.
    let workers = 8;
    let set =
        PolicySet::generate_poisson(profile(), &[150.0, 300.0, 450.0], &quick_config(workers))
            .unwrap();
    let trace = ramsis::workload::Trace::from_interval_qps(
        &[120.0, 280.0, 430.0],
        10.0,
        ramsis::workload::TraceKind::Custom,
    );
    let sim = Simulation::new(profile(), SimulationConfig::new(workers, 0.15).seeded(3))
        .expect("valid simulation config");
    let mut scheme = RamsisScheme::new(set);
    let mut monitor = LoadMonitor::new();
    let report = sim.run(&trace, &mut scheme, &mut monitor);
    assert_eq!(report.served, report.total_arrivals);
    assert!(
        report.violation_rate < 0.05,
        "violations {}",
        report.violation_rate
    );
    // Multiple models must have been exercised across the load regimes.
    assert!(
        report.per_model.len() >= 2,
        "models: {:?}",
        report.per_model
    );
}

#[test]
fn overload_degrades_gracefully_for_every_scheme() {
    // Far beyond capacity nothing is dropped, everything is served
    // (late), and violation rates approach 1 without panics.
    let workers = 2;
    let load = 500.0;
    let trace = Trace::constant(load, 5.0);
    let sim = Simulation::new(profile(), SimulationConfig::new(workers, 0.15).seeded(5))
        .expect("valid simulation config");

    let set = PolicySet::generate_poisson(profile(), &[load], &quick_config(workers)).unwrap();
    let mut ramsis = RamsisScheme::new(set);
    let mut m1 = OracleMonitor::new(trace.clone());
    let r = sim.run(&trace, &mut ramsis, &mut m1);
    assert_eq!(r.served, r.total_arrivals);
    assert!(r.violation_rate > 0.5);

    let mut jf = JellyfishPlus::new(profile(), workers);
    let mut m2 = OracleMonitor::new(trace.clone());
    let j = sim.run(&trace, &mut jf, &mut m2);
    assert_eq!(j.served, j.total_arrivals);
    assert!(j.violation_rate > 0.5);
}

#[test]
fn deterministic_across_runs() {
    let workers = 4;
    let set = PolicySet::generate_poisson(profile(), &[200.0], &quick_config(workers)).unwrap();
    let trace = Trace::constant(200.0, 5.0);
    let sim = Simulation::new(profile(), SimulationConfig::new(workers, 0.15).seeded(11))
        .expect("valid simulation config");
    let run = |set: PolicySet| {
        let mut scheme = RamsisScheme::new(set);
        let mut monitor = OracleMonitor::new(trace.clone());
        sim.run(&trace, &mut scheme, &mut monitor)
    };
    assert_eq!(run(set.clone()), run(set));
}
