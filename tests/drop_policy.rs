//! The §4.3.1 drop reformulation: "RAMSIS can be re-formulated in a
//! straightforward manner to drop queries whose deadlines cannot be
//! satisfied [15, 43] via changes to the transition probabilities."

use ramsis::core::{
    generate_policy, Decision, Discretization, MissPolicy, PoissonArrivals, PolicyConfig, PolicySet,
};
use ramsis::prelude::*;
use ramsis::sim::RamsisScheme;
use ramsis::workload::OracleMonitor;

fn profile() -> &'static WorkerProfile {
    use std::sync::OnceLock;
    static P: OnceLock<WorkerProfile> = OnceLock::new();
    P.get_or_init(|| {
        WorkerProfile::build(
            &ModelCatalog::torchvision_image(),
            Duration::from_millis(150),
            ProfilerConfig::default(),
        )
    })
}

fn config(workers: usize, on_miss: MissPolicy) -> PolicyConfig {
    PolicyConfig::builder(Duration::from_millis(150))
        .workers(workers)
        .discretization(Discretization::fixed_length(15))
        .on_miss(on_miss)
        .build()
}

#[test]
fn drop_policy_sheds_exhausted_slack() {
    let policy = generate_policy(
        profile(),
        &PoissonArrivals::per_second(100.0),
        &config(4, MissPolicy::Drop),
    )
    .unwrap();
    // Exhausted slack: the policy sheds instead of serving late.
    assert_eq!(policy.decide(3, 0.0), Decision::Drop { count: 3 });
    assert_eq!(policy.decide(3, -1.0), Decision::Drop { count: 3 });
    // Fresh queries are still served normally.
    assert!(matches!(policy.decide(1, 0.15), Decision::Serve { .. }));
}

#[test]
fn serve_late_policy_never_drops() {
    let policy = generate_policy(
        profile(),
        &PoissonArrivals::per_second(100.0),
        &config(4, MissPolicy::ServeLate),
    )
    .unwrap();
    for n in 1..=10usize {
        for slack in [-0.1, 0.0, 0.05, 0.15] {
            assert!(
                !matches!(policy.decide(n, slack), Decision::Drop { .. }),
                "n={n} slack={slack}"
            );
        }
    }
}

#[test]
fn overload_sheds_instead_of_serving_late() {
    // 2 workers cannot sustain 500 QPS: the drop variant sheds doomed
    // queries and keeps serving the rest on time, while serve-late
    // serves everything late.
    let workers = 2;
    let load = 500.0;
    let trace = Trace::constant(load, 10.0);
    let run = |on_miss: MissPolicy| {
        let set =
            PolicySet::generate_poisson(profile(), &[load], &config(workers, on_miss)).unwrap();
        let sim = Simulation::new(profile(), SimulationConfig::new(workers, 0.15).seeded(21))
            .expect("valid simulation config");
        let mut scheme = RamsisScheme::new(set);
        let mut monitor = OracleMonitor::new(trace.clone());
        sim.run(&trace, &mut scheme, &mut monitor)
    };

    let late = run(MissPolicy::ServeLate);
    let drop = run(MissPolicy::Drop);

    // Serve-late: everything served, mostly violated, nothing dropped.
    assert_eq!(late.served, late.total_arrivals);
    assert_eq!(late.dropped, 0);
    assert!(
        late.violation_rate > 0.5,
        "late violations {}",
        late.violation_rate
    );

    // Drop: a substantial share shed, and the *served* queries miss
    // their deadlines far less often.
    assert_eq!(drop.served + drop.dropped, drop.total_arrivals);
    assert!(drop.dropped > 0, "nothing was shed");
    assert!(
        drop.violation_rate < late.violation_rate / 2.0,
        "drop served-violations {} vs late {}",
        drop.violation_rate,
        late.violation_rate
    );
    // The combined miss-or-loss rate is still high — shedding cannot
    // create capacity — but response times of served queries recover.
    assert!(drop.miss_or_loss_rate() > 0.3);
    assert!(drop.p99_response_s < late.p99_response_s);
}

#[test]
fn drop_guarantees_count_shed_queries_as_violations() {
    let policy = generate_policy(
        profile(),
        &PoissonArrivals::per_second(5_000.0),
        &config(1, MissPolicy::Drop),
    )
    .unwrap();
    // Hopeless overload: the expected violation (miss-or-shed) rate is
    // near one even though the policy sheds.
    assert!(
        policy.guarantees().expected_violation_rate > 0.5,
        "got {}",
        policy.guarantees().expected_violation_rate
    );
}
