//! Cross-task coverage: every (task, paper SLO) point builds a profile,
//! generates a policy, and serves traffic.

use ramsis::core::{generate_policy, Discretization, PoissonArrivals, PolicyConfig, PolicySet};
use ramsis::prelude::*;
use ramsis::profiles::Task;
use ramsis::sim::RamsisScheme;
use ramsis::workload::OracleMonitor;

fn catalog_for(task: Task) -> ModelCatalog {
    match task {
        Task::ImageClassification => ModelCatalog::torchvision_image(),
        Task::TextClassification => ModelCatalog::bert_text(),
    }
}

#[test]
fn every_paper_configuration_is_servable() {
    for task in [Task::ImageClassification, Task::TextClassification] {
        let catalog = catalog_for(task);
        for slo_s in task.paper_slos() {
            let profile = WorkerProfile::build(
                &catalog,
                Duration::from_secs_f64(slo_s),
                ProfilerConfig::default(),
            );
            assert!(profile.max_batch() >= 1, "{task:?} {slo_s}");
            assert!(!profile.pareto_models().is_empty());

            // A light, clearly satisfiable load per worker.
            let workers = 4;
            let load = 50.0;
            let config = PolicyConfig::builder(Duration::from_secs_f64(slo_s))
                .workers(workers)
                .discretization(Discretization::fixed_length(10))
                .build();
            let policy = generate_policy(&profile, &PoissonArrivals::per_second(load), &config)
                .unwrap_or_else(|e| panic!("{task:?} {slo_s}: {e}"));
            let g = policy.guarantees();
            assert!(
                g.expected_violation_rate < 0.02,
                "{task:?} {slo_s}: violations {}",
                g.expected_violation_rate
            );
            // The fastest model never has the best accuracy; at this
            // light load the policy must do better than pinning it.
            let fast_acc = profile.accuracy(profile.fastest_model());
            assert!(
                g.expected_accuracy > fast_acc,
                "{task:?} {slo_s}: {} <= {fast_acc}",
                g.expected_accuracy
            );

            let set = PolicySet::from_policies(vec![policy]).unwrap();
            let trace = Trace::constant(load, 10.0);
            let sim = Simulation::new(&profile, SimulationConfig::new(workers, slo_s).seeded(1))
                .expect("valid simulation config");
            let mut scheme = RamsisScheme::new(set);
            let mut monitor = OracleMonitor::new(trace.clone());
            let report = sim.run(&trace, &mut scheme, &mut monitor);
            assert_eq!(report.served, report.total_arrivals);
            assert!(
                report.violation_rate < 0.05,
                "{task:?} {slo_s}: {}",
                report.violation_rate
            );
        }
    }
}

#[test]
fn slo_tightness_orders_accuracy() {
    // Looser SLOs admit slower, more accurate models: expected accuracy
    // at a fixed light load must be non-decreasing in the SLO.
    let catalog = catalog_for(Task::ImageClassification);
    let mut accs = Vec::new();
    for slo_s in Task::ImageClassification.paper_slos() {
        let profile = WorkerProfile::build(
            &catalog,
            Duration::from_secs_f64(slo_s),
            ProfilerConfig::default(),
        );
        let config = PolicyConfig::builder(Duration::from_secs_f64(slo_s))
            .workers(4)
            .discretization(Discretization::fixed_length(10))
            .build();
        let policy =
            generate_policy(&profile, &PoissonArrivals::per_second(30.0), &config).unwrap();
        accs.push(policy.guarantees().expected_accuracy);
    }
    assert!(
        accs[0] <= accs[1] + 0.2 && accs[1] <= accs[2] + 0.2,
        "accuracies not ordered by SLO: {accs:?}"
    );
}
