#!/usr/bin/env bash
# The full pre-merge gate: formatting, lints as errors, the whole test
# suite. Runs offline against the vendored registry stand-ins (see
# README "Offline builds"); no network access required.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== cargo fmt --check ==="
cargo fmt --all -- --check

echo "=== cargo clippy (warnings are errors) ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== cargo test ==="
cargo test --workspace -q

echo "ci.sh: all green"
