#!/usr/bin/env bash
# The full pre-merge gate: formatting, lints as errors, rustdoc as
# errors, the whole test suite. Runs offline against the vendored
# registry stand-ins (see README "Offline builds"); no network access
# required. Each stage reports its wall-clock time.
set -euo pipefail
cd "$(dirname "$0")/.."

stage() {
    local name="$1"
    shift
    echo "=== ${name} ==="
    local start=$SECONDS
    "$@"
    echo "--- ${name}: $((SECONDS - start))s"
}

stage "cargo fmt --check" cargo fmt --all -- --check
stage "cargo clippy (warnings are errors)" \
    cargo clippy --workspace --all-targets -- -D warnings
stage "cargo doc (warnings are errors)" \
    env RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet
stage "cargo test" cargo test --workspace -q
# Randomized resilience smoke: 25 seeded chaos runs, invariants checked
# (determinism, conservation, counter agreement, hedge + admission
# bounds, scale-event accounting, autoscaler-off bit-identity). The
# full 100-run sweep lives in the simulator's test suite.
stage "chaos sweep (smoke)" cargo run -q -p ramsis-cli -- chaos --runs 25
# Elastic-capacity smoke: a short diurnal day through the autoscaler
# (scale-out, warm-up, drain, scale-in all exercised), then a chaos
# subset biased toward elastic runs. The frontier comparison itself
# lives in the elastic_frontier bench and the bench test suite.
autoscale_smoke() {
    cargo run --release -q -p ramsis-cli -- autoscale --duration 15 --events 0
    cargo run -q -p ramsis-cli -- chaos --runs 10 --seed 88 --max-workers 6
}
stage "autoscale-smoke" autoscale_smoke
# Perf-regression smoke: the pinned scenario matrix + solver stage under
# the self-profiler. The run itself asserts profiling-off bit-identity;
# --validate re-checks the written document's schema.
perf_smoke() {
    # No RETURN trap here: one set inside a function stays installed
    # globally and re-fires on the *caller's* return, where the local
    # is gone and `set -u` aborts the whole gate.
    local out
    out="$(mktemp -d)"
    cargo run --release -q -p ramsis-bench --bin perf_baseline -- --smoke --out "${out}"
    cargo run --release -q -p ramsis-bench --bin perf_baseline -- --validate "${out}/BENCH_perf.json"
    rm -rf "${out}"
}
stage "perf-smoke" perf_smoke
# Durability smoke: 25 randomized chaos runs with the kill–resume
# dimension on (each scenario also runs durably, is killed at a random
# checkpoint, and must resume to a byte-identical report and telemetry
# suffix), then the checkpoint-overhead gate in smoke mode (report
# byte-identity across recorder tiers + the capture-cost ceiling).
durability_smoke() {
    local out
    out="$(mktemp -d)"
    cargo run -q -p ramsis-cli -- chaos --runs 25 --seed 11 --kill-resume
    cargo run --release -q -p ramsis-bench --bin checkpoint_overhead -- --smoke --out "${out}"
    rm -rf "${out}"
}
stage "durability-smoke" durability_smoke
# Decision-provenance smoke: record a run's decision log, explain its
# violations (text + JSON), quantify exact regret by counterfactual
# replay (baseline replays asserted byte-identical inside the run),
# demand a loud failure on a missing log, then the decision-overhead
# gate in smoke mode (report byte-identity + off-by-default and
# per-record cost ceilings).
why_smoke() {
    local out
    out="$(mktemp -d)"
    cargo run --release -q -p ramsis-cli -- gen --task image --SLO 150 --worker 2 --d 10 \
        --load 40 --out "${out}"
    cargo run --release -q -p ramsis-cli -- gen --task image --SLO 150 --worker 2 --d 10 \
        --load 80 --out "${out}"
    cargo run --release -q -p ramsis-cli -- sim --m RAMSIS --trace constant --load 80 \
        --duration 8 --task image --SLO 150 --worker 2 --out "${out}" \
        --telemetry "${out}/t.jsonl" --decisions "${out}/d.jsonl"
    cargo run --release -q -p ramsis-cli -- why "${out}/d.jsonl" \
        --telemetry "${out}/t.jsonl" --top 5
    cargo run --release -q -p ramsis-cli -- why "${out}/d.jsonl" \
        --telemetry "${out}/t.jsonl" --json > /dev/null
    cargo run --release -q -p ramsis-cli -- why --counterfactual --m RAMSIS --trace constant \
        --load 80 --duration 8 --task image --SLO 150 --worker 2 --out "${out}" \
        --max-decisions 3 --alternatives 2
    if cargo run --release -q -p ramsis-cli -- why "${out}/missing.jsonl" \
        --telemetry "${out}/t.jsonl" 2>/dev/null; then
        echo "why accepted a missing decision log" >&2
        return 1
    fi
    cargo run --release -q -p ramsis-bench --bin decision_overhead -- --smoke --out "${out}"
    rm -rf "${out}"
}
stage "why-smoke" why_smoke
# Failure-detection smoke: 25 randomized chaos runs with the detector
# forced on every scenario (detection-bound, reinstatement, breaker,
# and health-off bit-identity invariants all checked), the canonical
# gray-failure timeline, then the detection-frontier bench in smoke
# mode (lag-within-bound + probe-cost monotonicity assertions,
# results to BENCH_health.json).
health_smoke() {
    local out
    out="$(mktemp -d)"
    cargo run -q -p ramsis-cli -- chaos --runs 25 --seed 17 --health
    cargo run --release -q -p ramsis-cli -- health --duration 10 --events 0
    cargo run --release -q -p ramsis-bench --bin detection_frontier -- --smoke --out "${out}"
    rm -rf "${out}"
}
stage "health-smoke" health_smoke
# Telemetry-at-scale smoke: the sink scalability gates in smoke mode
# (binary ≥ 3x JSONL events/sec, 1%-sampling overhead and per-event
# ceilings, report + sampling-off identity), --validate re-checks the
# written document, then an end-to-end encoding round-trip through the
# CLI: record a binary sampled trace, convert binary → JSONL → binary,
# and demand the final bytes equal the original recording.
telemetry_smoke() {
    local out
    out="$(mktemp -d)"
    cargo run --release -q -p ramsis-bench --bin telemetry_scale -- --smoke --out "${out}"
    cargo run --release -q -p ramsis-bench --bin telemetry_scale -- \
        --validate "${out}/BENCH_telemetry.json"
    cargo run --release -q -p ramsis-cli -- sim --m JF --trace constant --load 100 \
        --duration 8 --task image --SLO 150 --worker 2 --out "${out}" \
        --telemetry "${out}/t.bin" --telemetry-sample 0.1
    cargo run --release -q -p ramsis-cli -- telemetry "${out}/t.bin" --quiet
    cargo run --release -q -p ramsis-cli -- telemetry convert "${out}/t.bin" \
        "${out}/t.jsonl" --quiet
    cargo run --release -q -p ramsis-cli -- telemetry convert "${out}/t.jsonl" \
        "${out}/t2.bin" --quiet
    cmp "${out}/t.bin" "${out}/t2.bin"
    rm -rf "${out}"
}
stage "telemetry-smoke" telemetry_smoke

echo "ci.sh: all green"
