#!/usr/bin/env bash
# Regenerates every table and figure of the paper (see DESIGN.md §3 and
# EXPERIMENTS.md). Quick grids by default; pass --full for the paper's
# grids (hours). Output: terminal tables/plots, CSV+JSON under results/,
# and per-experiment logs under results/logs/.
set -u
cd "$(dirname "$0")/.."
mkdir -p results/logs
BINS=(
  fig2_motivation fig3_image_profiles fig9_text_profiles table1_features
  table2_policy_gen_runtime fig5_production_trace fig6_constant_load
  fig7_fidelity fig8_many_models fig10_discretization fig11_batching
  fig12_fewer_models appendix_h_infaas appendix_i_sqf
  ablation_design timeline_production robustness_faults
)
status=0
for bin in "${BINS[@]}"; do
  echo "=== $bin $* ==="
  if ! cargo run --release -p ramsis-bench --bin "$bin" -- "$@" \
      > "results/logs/$bin.txt" 2>&1; then
    echo "FAILED: $bin (see results/logs/$bin.txt)"
    status=1
  else
    tail -n 3 "results/logs/$bin.txt"
  fi
done
exit $status
